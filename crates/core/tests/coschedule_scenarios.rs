//! Scenario tests for multi-tenant co-scheduling.

use pmemflow_core::{execute_coscheduled, ExecutionParams, SchedConfig, Tenant};
use pmemflow_workloads::{
    gtc_matmul, micro_2kb, micro_64mb, miniamr_readonly, ComponentSpec, IoPattern, WorkflowSpec,
};

fn params() -> ExecutionParams {
    ExecutionParams::default()
}

/// A tenant that is almost pure compute: long kernel phases, one small
/// object per iteration.
fn compute_bound_tenant() -> Tenant {
    let io = IoPattern {
        objects_per_snapshot: 1,
        object_bytes: 64 * 1024,
    };
    Tenant {
        spec: WorkflowSpec {
            name: "compute-bound".into(),
            writer: ComponentSpec {
                name: "sim".into(),
                compute_per_iteration: 1.0,
                io,
            },
            reader: ComponentSpec {
                name: "ana".into(),
                compute_per_iteration: 1.0,
                io,
            },
            ranks: 8,
            iterations: 10,
        },
        config: SchedConfig::P_LOC_R,
    }
}

#[test]
fn compute_bound_neighbour_is_cheap() {
    // A bandwidth-bound tenant next to an (almost) pure-compute tenant
    // suffers far less than next to another bandwidth-bound tenant.
    let bw = Tenant {
        spec: micro_64mb(8),
        config: SchedConfig::S_LOC_W,
    };
    let with_compute =
        execute_coscheduled(&[bw.clone(), compute_bound_tenant()], &params()).unwrap();
    let with_bw = execute_coscheduled(&[bw.clone(), bw], &params()).unwrap();
    assert!(
        with_compute.interference[0] < with_bw.interference[0],
        "{} vs {}",
        with_compute.interference[0],
        with_bw.interference[0]
    );
    // And the compute tenant itself barely notices the bandwidth hog.
    assert!(
        with_compute.interference[1] < 1.2,
        "compute tenant slowed {}x",
        with_compute.interference[1]
    );
}

#[test]
fn three_tenants_fit_and_finish() {
    let tenants = vec![
        Tenant {
            spec: micro_2kb(8),
            config: SchedConfig::P_LOC_R,
        },
        Tenant {
            spec: miniamr_readonly(8),
            config: SchedConfig::P_LOC_R,
        },
        Tenant {
            spec: gtc_matmul(8),
            config: SchedConfig::P_LOC_R,
        },
    ];
    let out = execute_coscheduled(&tenants, &params()).unwrap();
    assert_eq!(out.tenants.len(), 3);
    assert!(out.makespan >= out.tenants.iter().map(|m| m.total).fold(0.0, f64::max) - 1e-9);
    for (m, t) in out.tenants.iter().zip(&tenants) {
        // Per-tenant byte accounting still holds under co-scheduling.
        let expect = t.spec.total_bytes_written() as f64;
        assert!((m.writer.bytes - expect).abs() / expect < 1e-6);
    }
}

#[test]
fn coscheduling_is_deterministic() {
    let tenants = vec![
        Tenant {
            spec: micro_2kb(8),
            config: SchedConfig::P_LOC_R,
        },
        Tenant {
            spec: micro_64mb(8),
            config: SchedConfig::S_LOC_W,
        },
    ];
    let a = execute_coscheduled(&tenants, &params()).unwrap();
    let b = execute_coscheduled(&tenants, &params()).unwrap();
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    for (x, y) in a.tenants.iter().zip(b.tenants.iter()) {
        assert_eq!(x.total.to_bits(), y.total.to_bits());
    }
}

#[test]
fn mixed_placements_share_the_node() {
    // One tenant prioritizes its writer's socket, the other its reader's:
    // both sockets end up hosting ranks of both tenants — the capacity
    // check must account for that.
    let tenants = vec![
        Tenant {
            spec: micro_64mb(14),
            config: SchedConfig::S_LOC_W,
        },
        Tenant {
            spec: micro_2kb(14),
            config: SchedConfig::S_LOC_R,
        },
    ];
    // 14 + 14 = 28 per socket: exactly fits the paper testbed.
    let out = execute_coscheduled(&tenants, &params()).unwrap();
    assert_eq!(out.tenants.len(), 2);
    // One more rank anywhere must overflow.
    let too_many = vec![
        Tenant {
            spec: micro_64mb(15),
            config: SchedConfig::S_LOC_W,
        },
        Tenant {
            spec: micro_2kb(14),
            config: SchedConfig::S_LOC_R,
        },
    ];
    assert!(execute_coscheduled(&too_many, &params()).is_err());
}
