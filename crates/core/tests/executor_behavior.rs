//! Behavioural tests of the executor's deployment semantics: incremental
//! publishing, pipelining, staggering, batching.

use pmemflow_core::{execute, ExecutionParams, SchedConfig};
use pmemflow_workloads::{ComponentSpec, IoPattern, WorkflowSpec};

fn spec(ranks: usize, object_bytes: u64, objects: u64, cw: f64, cr: f64) -> WorkflowSpec {
    let io = IoPattern {
        objects_per_snapshot: objects,
        object_bytes,
    };
    WorkflowSpec {
        name: "behave".into(),
        writer: ComponentSpec {
            name: "w".into(),
            compute_per_iteration: cw,
            io,
        },
        reader: ComponentSpec {
            name: "r".into(),
            compute_per_iteration: cr,
            io,
        },
        ranks,
        iterations: 5,
    }
}

#[test]
fn parallel_reader_io_overlaps_writer_io() {
    // Pure-I/O workflow: in parallel mode, reader flows must coexist with
    // writer flows on the device (peak concurrency > ranks), because
    // objects are published incrementally within a snapshot.
    let params = ExecutionParams::default();
    let s = spec(6, 1 << 20, 16, 0.0, 0.0);
    let m = execute(&s, SchedConfig::P_LOC_W, &params).unwrap();
    assert!(
        m.device.peak_concurrency > 6,
        "peak {} should exceed the rank count",
        m.device.peak_concurrency
    );
}

#[test]
fn serial_never_overlaps_even_with_incremental_publishing() {
    let params = ExecutionParams::default();
    let s = spec(6, 1 << 20, 16, 0.0, 0.0);
    let m = execute(&s, SchedConfig::S_LOC_W, &params).unwrap();
    assert!(m.device.peak_concurrency <= 6);
}

#[test]
fn batching_granularity_does_not_change_serial_runtimes_materially() {
    // In serial mode batches only split flows back-to-back, so runtime is
    // insensitive to the batch count (within float noise).
    let s = spec(8, 1 << 20, 64, 0.1, 0.0);
    let p1 = ExecutionParams {
        batches_per_snapshot: 1,
        ..Default::default()
    };
    let p8 = ExecutionParams {
        batches_per_snapshot: 8,
        ..Default::default()
    };
    let a = execute(&s, SchedConfig::S_LOC_W, &p1).unwrap();
    let b = execute(&s, SchedConfig::S_LOC_W, &p8).unwrap();
    let rel = (a.total - b.total).abs() / a.total;
    assert!(rel < 0.05, "serial runtime shifted {rel:.3} with batching");
}

#[test]
fn stagger_spreads_write_bursts() {
    // With compute phases, staggering lowers the peak device concurrency
    // relative to lockstep ranks.
    let s = spec(12, 8 << 20, 8, 1.0, 0.0);
    let lockstep = ExecutionParams {
        stagger: 0.0,
        ..Default::default()
    };
    let staggered = ExecutionParams {
        stagger: 2.0,
        ..Default::default()
    };
    let a = execute(&s, SchedConfig::S_LOC_W, &lockstep).unwrap();
    let b = execute(&s, SchedConfig::S_LOC_W, &staggered).unwrap();
    assert!(
        (b.device.mean_busy_concurrency()) < a.device.mean_busy_concurrency() + 1e-9,
        "stagger should not increase mean concurrency: {} vs {}",
        b.device.mean_busy_concurrency(),
        a.device.mean_busy_concurrency()
    );
    assert!(b.device.peak_concurrency <= a.device.peak_concurrency);
}

#[test]
fn pure_io_workflow_has_no_compute_time() {
    let params = ExecutionParams::default();
    let m = execute(
        &spec(4, 1 << 20, 4, 0.0, 0.0),
        SchedConfig::P_LOC_R,
        &params,
    )
    .unwrap();
    assert_eq!(m.writer.compute_time, 0.0);
    assert_eq!(m.reader.compute_time, 0.0);
    assert!(m.writer.io_time > 0.0);
}

#[test]
fn compute_heavy_writer_accumulates_compute_time() {
    let params = ExecutionParams::default();
    let m = execute(
        &spec(4, 1 << 20, 4, 0.7, 0.0),
        SchedConfig::S_LOC_W,
        &params,
    )
    .unwrap();
    // 5 iterations × 0.7 s plus the stagger offset (mean over ranks).
    assert!(m.writer.compute_time >= 3.5 - 1e-9);
}

#[test]
fn single_rank_single_object_minimal_workflow() {
    let params = ExecutionParams::default();
    let m = execute(&spec(1, 4096, 1, 0.0, 0.0), SchedConfig::P_LOC_R, &params).unwrap();
    assert!(m.total > 0.0);
    assert_eq!(m.device.flows_completed, 2 * 5); // one write + one read per iteration
}

#[test]
fn total_time_monotone_in_iterations() {
    let params = ExecutionParams::default();
    let mut s3 = spec(4, 1 << 20, 8, 0.1, 0.1);
    s3.iterations = 3;
    let mut s9 = s3.clone();
    s9.iterations = 9;
    let a = execute(&s3, SchedConfig::P_LOC_R, &params).unwrap();
    let b = execute(&s9, SchedConfig::P_LOC_R, &params).unwrap();
    assert!(b.total > a.total);
}

#[test]
fn more_ranks_move_more_bytes() {
    let params = ExecutionParams::default();
    let a = execute(
        &spec(4, 1 << 20, 8, 0.0, 0.0),
        SchedConfig::S_LOC_W,
        &params,
    )
    .unwrap();
    let b = execute(
        &spec(8, 1 << 20, 8, 0.0, 0.0),
        SchedConfig::S_LOC_W,
        &params,
    )
    .unwrap();
    assert!((b.writer.bytes / a.writer.bytes - 2.0).abs() < 1e-9);
}
