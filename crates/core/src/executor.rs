//! The workflow executor: builds and runs the discrete-event simulation
//! for one workflow under one scheduler configuration.
//!
//! Deployment model (paper §II-A, Fig. 2): writer ranks are pinned to one
//! socket, reader ranks to the other, and the streaming channel lives in
//! the PMEM of the socket chosen by the placement decision. Serial
//! execution inserts a global barrier between the simulation and analytics
//! components; parallel execution pipelines the reader one version behind
//! its writer.

use crate::config::{ExecMode, SchedConfig};
use crate::metrics::{ComponentMetrics, RunMetrics};
use pmemflow_des::{
    Action, Direction, FlowAttrs, ProcessReport, ScriptProcess, SimDuration, SimError, Simulation,
};
use pmemflow_iostack::{StackCostModel, StackKind};
use pmemflow_platform::{locality_of, Node, PinError, PinPolicy, Pinning, SocketId};
use pmemflow_pmem::{DeviceProfile, OptaneAllocator};
use pmemflow_workloads::{ComponentSpec, WorkflowSpec};

/// Everything the executor needs besides the workflow and configuration.
#[derive(Debug, Clone)]
pub struct ExecutionParams {
    /// Device model (defaults to the paper's Optane gen-1 testbed).
    pub profile: DeviceProfile,
    /// Which I/O stack carries the channel (defaults to NVStream).
    pub stack: StackKind,
    /// Node topology (defaults to the paper's dual-socket 28-core testbed).
    pub node: Node,
    /// How many batches a snapshot's objects are published in. Objects are
    /// made visible to the reader *as they are written* (the versioned
    /// stores publish per object), so in parallel mode reader I/O overlaps
    /// writer I/O within the same iteration — the defining property of the
    /// paper's parallel execution mode ("their I/O operations … overlap in
    /// time", §II-A). Batching bounds the event count; 8 batches per
    /// snapshot resolves the overlap to 12.5% granularity.
    pub batches_per_snapshot: u64,
    /// Deterministic rank desynchronization: writer rank `i` starts with an
    /// extra delay of `i/ranks × compute_per_iteration × stagger`. Real MPI
    /// ranks drift apart over compute phases, so I/O windows spread instead
    /// of arriving in lockstep bursts; workloads with no compute phase
    /// (the microbenchmarks) stay fully synchronized, which is also
    /// physical — they re-converge on the shared device. 1.0 spreads ranks
    /// across one full compute phase.
    pub stagger: f64,
    /// Record per-rank span timelines (compute/io/wait) in the returned
    /// metrics — renderable as ASCII Gantt charts or Chrome traces.
    pub record_timeline: bool,
    /// Override the I/O stack cost model (None = derive from `stack`).
    /// Used by calibration sweeps and ablation benches.
    pub cost_override: Option<StackCostModel>,
}

impl Default for ExecutionParams {
    fn default() -> Self {
        Self {
            profile: DeviceProfile::optane_gen1(),
            stack: StackKind::NvStream,
            node: Node::paper_testbed(),
            batches_per_snapshot: 8,
            stagger: 2.46,
            cost_override: None,
            record_timeline: false,
        }
    }
}

impl ExecutionParams {
    /// Same parameters with a different I/O stack.
    pub fn with_stack(mut self, stack: StackKind) -> Self {
        self.stack = stack;
        self
    }

    /// Same parameters with a different device profile.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// Errors from executing a workflow.
#[derive(Debug)]
pub enum ExecError {
    /// The workflow specification failed validation.
    Spec(String),
    /// Ranks could not be pinned (too many for a socket).
    Pin(PinError),
    /// The simulation itself failed (deadlock, runaway).
    Sim(SimError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Spec(s) => write!(f, "invalid workflow: {s}"),
            ExecError::Pin(e) => write!(f, "pinning failed: {e}"),
            ExecError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PinError> for ExecError {
    fn from(e: PinError) -> Self {
        ExecError::Pin(e)
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

/// Build the flow attributes for one component's snapshot I/O.
///
/// `compute_per_object` is the kernel compute the component interleaves
/// between consecutive object accesses; per §VIII it hides device access
/// latency (a reader with compute between reads is not latency-chain
/// bound), so both the charged per-op latency and — for remote reads — the
/// single-thread rate are adjusted by the hiding fraction.
fn flow_attrs(
    dir: Direction,
    loc: pmemflow_des::Locality,
    object_bytes: u64,
    compute_per_object: f64,
    cost: &StackCostModel,
    profile: &DeviceProfile,
) -> FlowAttrs {
    let lat = profile.latency(dir, loc);
    let hide_frac = if compute_per_object > 0.0 {
        compute_per_object / (compute_per_object + lat)
    } else {
        0.0
    };
    let lat_eff = lat * (1.0 - hide_frac);
    FlowAttrs {
        direction: dir,
        locality: loc,
        access_bytes: object_bytes,
        sw_time_per_byte: cost.sw_time_per_byte(dir, object_bytes, lat_eff),
        peak_device_rate: profile.single_thread_rate_with_hiding(dir, loc, object_bytes, hide_frac),
    }
}

fn component_metrics(reports: &[&ProcessReport]) -> ComponentMetrics {
    let n = reports.len().max(1) as f64;
    ComponentMetrics {
        compute_time: reports
            .iter()
            .map(|r| r.compute_time.seconds())
            .sum::<f64>()
            / n,
        io_time: reports.iter().map(|r| r.io_time.seconds()).sum::<f64>() / n,
        wait_time: reports.iter().map(|r| r.wait_time.seconds()).sum::<f64>() / n,
        channel_waits: reports.iter().map(|r| r.channel_waits).sum(),
        finish_time: reports
            .iter()
            .filter_map(|r| r.finished_at)
            .map(|t| t.seconds())
            .fold(0.0, f64::max),
        bytes: reports.iter().map(|r| r.io_bytes).sum(),
    }
}

/// Build the writer/reader rank processes of one workflow into `sim`,
/// sharing device `dev`. Process names are `{prefix}writer-{r}` /
/// `{prefix}reader-{r}` so metrics can be attributed per workflow.
fn build_workflow_processes(
    sim: &mut Simulation,
    dev: pmemflow_des::ResourceId,
    spec: &WorkflowSpec,
    config: SchedConfig,
    params: &ExecutionParams,
    prefix: &str,
) {
    let w_loc = config.writer_locality();
    let r_loc = config.reader_locality();
    let cost = params
        .cost_override
        .unwrap_or_else(|| params.stack.cost_model());
    // Writers emit their compute as a distinct phase before the I/O phase
    // (checkpoint-style), so no per-object interleaving on the write side;
    // analytics kernels compute *between* object reads (§IV-B).
    let w_attrs = flow_attrs(
        Direction::Write,
        w_loc,
        spec.writer.io.object_bytes,
        0.0,
        &cost,
        &params.profile,
    );
    let reader_compute_per_object =
        spec.reader.compute_per_iteration / spec.reader.io.objects_per_snapshot as f64;
    let r_attrs = flow_attrs(
        Direction::Read,
        r_loc,
        spec.reader.io.object_bytes,
        reader_compute_per_object,
        &cost,
        &params.profile,
    );
    let channels: Vec<_> = (0..spec.ranks).map(|_| sim.add_channel()).collect();
    // A snapshot is published incrementally: objects become visible as
    // they are written. Channel versions count *batches* published so far.
    let batches = params
        .batches_per_snapshot
        .min(spec.writer.io.objects_per_snapshot)
        .max(1);
    let snapshot_bytes = spec.writer.io.snapshot_bytes() as f64;
    let batch_bytes = snapshot_bytes / batches as f64;
    // Charge the reader for *its* snapshot size, not the writer's. The
    // suite's specs are 1:1 exchanges (validate() enforces it for the
    // public entry points), but a subsampling reader must not silently
    // inherit the writer's byte count.
    let reader_batch_bytes = spec.reader.io.snapshot_bytes() as f64 / batches as f64;
    let final_watermark = spec.iterations * batches;

    for (rank, &ch) in channels.iter().enumerate() {
        let mut actions = Vec::with_capacity((spec.iterations * (batches * 2 + 1)) as usize + 1);
        let stagger_delay =
            spec.writer.compute_per_iteration * params.stagger * rank as f64 / spec.ranks as f64;
        if stagger_delay > 0.0 {
            actions.push(Action::Compute(SimDuration::from_secs(stagger_delay)));
        }
        for v in 1..=spec.iterations {
            if spec.writer.compute_per_iteration > 0.0 {
                actions.push(Action::Compute(SimDuration::from_secs(
                    spec.writer.compute_per_iteration,
                )));
            }
            for k in 1..=batches {
                actions.push(Action::Io {
                    resource: dev,
                    bytes: batch_bytes,
                    attrs: w_attrs,
                });
                actions.push(Action::Publish {
                    channel: ch,
                    version: (v - 1) * batches + k,
                });
            }
        }
        sim.spawn(Box::new(ScriptProcess::new(
            format!("{prefix}writer-{rank}"),
            actions,
        )));
    }

    // The analytics kernel interleaves its compute between object reads
    // (§VIII "Interleaved compute hides effects of access contention"), so
    // reader compute is spread across the batches of an iteration.
    let reader_compute_per_batch = spec.reader.compute_per_iteration / batches as f64;
    for (rank, &ch) in channels.iter().enumerate() {
        let mut actions = Vec::with_capacity((spec.iterations * batches * 3) as usize + spec.ranks);
        match config.mode {
            ExecMode::Serial => {
                // Global barrier: wait until *every* writer has published
                // its final batch (analytics starts after simulation
                // completes, §II-A).
                for &other in &channels {
                    actions.push(Action::WaitVersion {
                        channel: other,
                        version: final_watermark,
                    });
                }
                for _v in 1..=spec.iterations {
                    for _k in 1..=batches {
                        actions.push(Action::Io {
                            resource: dev,
                            bytes: reader_batch_bytes,
                            attrs: r_attrs,
                        });
                        if reader_compute_per_batch > 0.0 {
                            actions.push(Action::Compute(SimDuration::from_secs(
                                reader_compute_per_batch,
                            )));
                        }
                    }
                }
            }
            ExecMode::Parallel => {
                // Pipelined: consume each batch as soon as the paired
                // writer publishes it — reader I/O overlaps writer I/O.
                for v in 1..=spec.iterations {
                    for k in 1..=batches {
                        actions.push(Action::WaitVersion {
                            channel: ch,
                            version: (v - 1) * batches + k,
                        });
                        actions.push(Action::Io {
                            resource: dev,
                            bytes: reader_batch_bytes,
                            attrs: r_attrs,
                        });
                        if reader_compute_per_batch > 0.0 {
                            actions.push(Action::Compute(SimDuration::from_secs(
                                reader_compute_per_batch,
                            )));
                        }
                    }
                }
            }
        }
        sim.spawn(Box::new(ScriptProcess::new(
            format!("{prefix}reader-{rank}"),
            actions,
        )));
    }
}

/// Execute `spec` under `config` and return the measurements.
pub fn execute(
    spec: &WorkflowSpec,
    config: SchedConfig,
    params: &ExecutionParams,
) -> Result<RunMetrics, ExecError> {
    spec.validate().map_err(ExecError::Spec)?;

    // Deployment: the PMEM channel is (by convention) on socket 0; the
    // placement decision pins the prioritized component there.
    let pmem_socket = SocketId(0);
    let writer_socket = match config.placement {
        crate::config::Placement::LocW => pmem_socket,
        crate::config::Placement::LocR => pmem_socket.peer(),
    };
    let reader_socket = writer_socket.peer();
    Pinning::new(&params.node, PinPolicy::Socket(writer_socket), spec.ranks)?;
    Pinning::new(&params.node, PinPolicy::Socket(reader_socket), spec.ranks)?;
    let w_loc = locality_of(writer_socket, pmem_socket);
    let r_loc = locality_of(reader_socket, pmem_socket);
    debug_assert_eq!(w_loc, config.writer_locality());
    debug_assert_eq!(r_loc, config.reader_locality());

    let mut sim = Simulation::new();
    if params.record_timeline {
        sim = sim.with_timeline();
    }
    let dev = sim.add_resource(Box::new(OptaneAllocator::new(params.profile.clone())));
    build_workflow_processes(&mut sim, dev, spec, config, params, "");

    let report = sim.run()?;
    let writers: Vec<&ProcessReport> = report
        .processes
        .iter()
        .filter(|p| p.name.starts_with("writer-"))
        .collect();
    let readers: Vec<&ProcessReport> = report
        .processes
        .iter()
        .filter(|p| p.name.starts_with("reader-"))
        .collect();
    debug_assert_eq!(writers.len(), spec.ranks);
    Ok(RunMetrics {
        config,
        total: report.end_time.seconds(),
        writer: component_metrics(&writers),
        reader: component_metrics(&readers),
        device: report.resources[0].clone(),
        events: report.events_processed,
        max_heap_depth: report.max_heap_depth,
        timeline: report.timeline,
    })
}

/// Execute several workflows concurrently on the same node and device
/// (see [`crate::coschedule`] for the validated entry point). Returns one
/// metrics record per workflow; `total` is measured from the shared t = 0.
pub(crate) fn execute_many(
    tenants: &[crate::coschedule::Tenant],
    params: &ExecutionParams,
) -> Result<Vec<RunMetrics>, ExecError> {
    let mut sim = Simulation::new();
    if params.record_timeline {
        sim = sim.with_timeline();
    }
    let dev = sim.add_resource(Box::new(OptaneAllocator::new(params.profile.clone())));
    for (i, t) in tenants.iter().enumerate() {
        build_workflow_processes(&mut sim, dev, &t.spec, t.config, params, &format!("wf{i}-"));
    }
    let report = sim.run()?;
    let mut out = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        let wp = format!("wf{i}-writer-");
        let rp = format!("wf{i}-reader-");
        let writers: Vec<&ProcessReport> = report
            .processes
            .iter()
            .filter(|p| p.name.starts_with(&wp))
            .collect();
        let readers: Vec<&ProcessReport> = report
            .processes
            .iter()
            .filter(|p| p.name.starts_with(&rp))
            .collect();
        // A tenant whose readers never reported a finish time must not
        // silently claim total == 0; fall back to the shared end time
        // (the engine guarantees all processes finished when run() is Ok,
        // but the prefix filter above could still come up empty).
        let reader_finish = readers
            .iter()
            .filter_map(|p| p.finished_at)
            .map(|t| t.seconds())
            .reduce(f64::max)
            .unwrap_or_else(|| report.end_time.seconds());
        out.push(RunMetrics {
            config: t.config,
            total: reader_finish,
            writer: component_metrics(&writers),
            reader: component_metrics(&readers),
            device: report.resources[0].clone(),
            events: report.events_processed,
            max_heap_depth: report.max_heap_depth,
            timeline: None,
        });
    }
    Ok(out)
}

/// Execute `spec` under all four Table I configurations.
pub fn sweep(
    spec: &WorkflowSpec,
    params: &ExecutionParams,
) -> Result<crate::metrics::ConfigSweep, ExecError> {
    let mut runs = Vec::with_capacity(4);
    for config in SchedConfig::ALL {
        runs.push(execute(spec, config, params)?);
    }
    Ok(crate::metrics::ConfigSweep {
        workflow: spec.name.clone(),
        runs,
    })
}

/// Result of a standalone component run: per-rank aggregates plus the
/// device's view of the traffic.
#[derive(Debug, Clone)]
pub struct StandaloneReport {
    /// Mean per-rank metrics.
    pub component: ComponentMetrics,
    /// Device traffic/occupancy report.
    pub device: pmemflow_des::ResourceReport,
}

/// Run one component standalone — serial, with node-local PMEM — which is
/// exactly the operating point the paper uses to define a component's
/// **I/O index** (§IV-C).
pub fn execute_component_standalone(
    component: &ComponentSpec,
    ranks: usize,
    iterations: u64,
    dir: Direction,
    params: &ExecutionParams,
) -> Result<StandaloneReport, ExecError> {
    if ranks == 0 || iterations == 0 {
        return Err(ExecError::Spec(
            "ranks and iterations must be positive".into(),
        ));
    }
    Pinning::new(&params.node, PinPolicy::Socket(SocketId(0)), ranks)?;
    let cost = params
        .cost_override
        .unwrap_or_else(|| params.stack.cost_model());
    let attrs = flow_attrs(
        dir,
        pmemflow_des::Locality::Local,
        component.io.object_bytes,
        0.0,
        &cost,
        &params.profile,
    );
    let mut sim = Simulation::new();
    let dev = sim.add_resource(Box::new(OptaneAllocator::new(params.profile.clone())));
    let bytes = component.io.snapshot_bytes() as f64;
    for rank in 0..ranks {
        let mut actions = Vec::new();
        for _ in 0..iterations {
            if component.compute_per_iteration > 0.0 {
                actions.push(Action::Compute(SimDuration::from_secs(
                    component.compute_per_iteration,
                )));
            }
            actions.push(Action::Io {
                resource: dev,
                bytes,
                attrs,
            });
        }
        sim.spawn(Box::new(ScriptProcess::new(
            format!("standalone-{rank}"),
            actions,
        )));
    }
    let report = sim.run()?;
    let procs: Vec<&ProcessReport> = report.processes.iter().collect();
    Ok(StandaloneReport {
        component: component_metrics(&procs),
        device: report.resources[0].clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{micro_2kb, micro_64mb};

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn micro64_serial_locw_runs() {
        let m = execute(&micro_64mb(8), SchedConfig::S_LOC_W, &params()).unwrap();
        assert!(m.total > 0.0);
        // 80 GB written + 80 GB read.
        assert!((m.writer.bytes - 80.0 * (1u64 << 30) as f64).abs() < 1e6);
        assert!((m.reader.bytes - 80.0 * (1u64 << 30) as f64).abs() < 1e6);
        // Serial: readers finish strictly after writers.
        assert!(m.reader.finish_time > m.writer.finish_time);
        assert_eq!(m.total, m.reader.finish_time);
    }

    #[test]
    fn serial_reader_never_overlaps_writer() {
        let m = execute(&micro_64mb(8), SchedConfig::S_LOC_W, &params()).unwrap();
        // In serial mode every reader waits out the whole writer phase.
        let (w_phase, r_phase) = m.serial_split();
        assert!(w_phase > 0.0 && r_phase > 0.0);
        assert!(m.reader.wait_time >= w_phase * 0.99);
    }

    #[test]
    fn parallel_overlaps() {
        let s = execute(&micro_64mb(8), SchedConfig::S_LOC_W, &params()).unwrap();
        let p = execute(&micro_64mb(8), SchedConfig::P_LOC_W, &params()).unwrap();
        // Parallel must overlap some reader I/O with writer I/O: peak
        // device concurrency exceeds the rank count.
        assert!(p.device.peak_concurrency > 8);
        assert!(s.device.peak_concurrency <= 8);
    }

    #[test]
    fn remote_write_placement_slows_bandwidth_bound_writers() {
        let locw = execute(&micro_64mb(24), SchedConfig::S_LOC_W, &params()).unwrap();
        let locr = execute(&micro_64mb(24), SchedConfig::S_LOC_R, &params()).unwrap();
        // Writer phase must be clearly slower when writes are remote
        // (calibrated remote-write curve; paper Fig. 4c shows the same).
        assert!(
            locr.writer.finish_time > 1.3 * locw.writer.finish_time,
            "remote {} vs local {}",
            locr.writer.finish_time,
            locw.writer.finish_time
        );
    }

    #[test]
    fn sweep_covers_all_configs() {
        let sw = sweep(&micro_2kb(8), &params()).unwrap();
        assert_eq!(sw.runs.len(), 4);
        for (run, cfg) in sw.runs.iter().zip(SchedConfig::ALL) {
            assert_eq!(run.config, cfg);
            assert!(run.total > 0.0);
        }
    }

    #[test]
    fn standalone_io_index_pure_io_is_one() {
        let spec = micro_64mb(8);
        let m =
            execute_component_standalone(&spec.writer, 8, 2, Direction::Write, &params()).unwrap();
        assert!(m.component.io_index() > 0.99);
        assert!(m.device.mean_busy_concurrency() > 1.0);
    }

    #[test]
    fn standalone_io_index_compute_heavy_is_low() {
        let spec = pmemflow_workloads::gtc_readonly(8);
        let m =
            execute_component_standalone(&spec.writer, 8, 2, Direction::Write, &params()).unwrap();
        let idx = m.component.io_index();
        assert!(idx < 0.4, "GTC sim I/O index should be low, got {idx}");
    }

    #[test]
    fn too_many_ranks_fail_to_pin() {
        let spec = micro_64mb(29); // paper node has 28 cores/socket
        assert!(matches!(
            execute(&spec, SchedConfig::S_LOC_W, &params()),
            Err(ExecError::Pin(_))
        ));
    }

    #[test]
    fn reader_bytes_follow_reader_spec_when_asymmetric() {
        // Regression: reader flows used to be charged batch bytes derived
        // from the *writer's* snapshot size. Build an asymmetric exchange
        // (reader consumes a quarter of what the writer produces) directly
        // — the public entry points validate() it away — and check the
        // per-component byte accounting.
        let mut spec = micro_64mb(4);
        spec.reader.io.object_bytes = spec.writer.io.object_bytes / 4;
        let params = params();
        let mut sim = Simulation::new();
        let dev = sim.add_resource(Box::new(OptaneAllocator::new(params.profile.clone())));
        build_workflow_processes(&mut sim, dev, &spec, SchedConfig::P_LOC_R, &params, "");
        let report = sim.run().unwrap();
        let written: f64 = report
            .processes
            .iter()
            .filter(|p| p.name.starts_with("writer-"))
            .map(|p| p.io_bytes)
            .sum();
        let read: f64 = report
            .processes
            .iter()
            .filter(|p| p.name.starts_with("reader-"))
            .map(|p| p.io_bytes)
            .sum();
        let expect_written = spec.total_bytes_written() as f64;
        let expect_read =
            (spec.ranks as u64 * spec.iterations * spec.reader.io.snapshot_bytes()) as f64;
        assert!((written - expect_written).abs() / expect_written < 1e-9);
        assert!(
            (read - expect_read).abs() / expect_read < 1e-9,
            "read {read} vs {expect_read}"
        );
    }

    #[test]
    fn execute_many_totals_are_positive_and_cover_readers() {
        // Regression: a tenant whose reader finish times went missing used
        // to report total == 0.0 from the fold's 0.0 seed.
        let tenants = vec![
            crate::coschedule::Tenant {
                spec: micro_2kb(4),
                config: SchedConfig::P_LOC_R,
            },
            crate::coschedule::Tenant {
                spec: micro_64mb(4),
                config: SchedConfig::S_LOC_W,
            },
        ];
        let metrics = execute_many(&tenants, &params()).unwrap();
        assert_eq!(metrics.len(), 2);
        for m in &metrics {
            assert!(m.total > 0.0, "tenant reported zero total");
            assert!(
                m.total >= m.reader.finish_time - 1e-9,
                "total {} below reader finish {}",
                m.total,
                m.reader.finish_time
            );
            assert!(
                m.reader.channel_waits > 0,
                "readers must have parked at least once"
            );
        }
    }

    #[test]
    fn engine_counters_surface_in_metrics() {
        let m = execute(&micro_2kb(4), SchedConfig::P_LOC_R, &params()).unwrap();
        assert!(m.events > 0);
        assert!(m.max_heap_depth > 0);
        assert!(m.max_heap_depth as u64 <= m.events);
        // Parallel readers park on every batch they outrun.
        assert!(m.reader.channel_waits > 0);
        // Writers never wait on channels in this workload shape.
        assert_eq!(m.writer.channel_waits, 0);
    }

    #[test]
    fn determinism_across_runs() {
        let a = execute(&micro_2kb(16), SchedConfig::P_LOC_R, &params()).unwrap();
        let b = execute(&micro_2kb(16), SchedConfig::P_LOC_R, &params()).unwrap();
        assert_eq!(a.total.to_bits(), b.total.to_bits());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn nova_is_slower_than_nvstream_for_small_objects() {
        let spec = micro_2kb(8);
        let nvs = execute(&spec, SchedConfig::S_LOC_R, &params()).unwrap();
        let nova = execute(
            &spec,
            SchedConfig::S_LOC_R,
            &params().with_stack(StackKind::Nova),
        )
        .unwrap();
        // End-to-end the write phase may be bandwidth-bound in both stacks;
        // the software-cost difference shows up squarely in the local-read
        // phase (reads are never bandwidth-bound here).
        let (_, nvs_read) = nvs.serial_split();
        let (_, nova_read) = nova.serial_split();
        assert!(
            nova_read > 1.4 * nvs_read,
            "NOVA read phase {nova_read} vs NVStream {nvs_read}"
        );
        assert!(
            nova.total > 1.15 * nvs.total,
            "NOVA {} vs NVStream {}",
            nova.total,
            nvs.total
        );
    }
}
