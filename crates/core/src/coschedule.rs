//! Co-scheduling multiple workflows on one node.
//!
//! The paper studies one workflow per node but motivates the problem with
//! multi-tenancy (§II-A): *in situ* deployments share server resources. A
//! scheduler placing several coupled workflows must anticipate the PMEM
//! interference between them — this module executes any number of
//! workflows concurrently against the shared device model and quantifies
//! exactly that.
//!
//! Core-capacity accounting is enforced: every workflow's writers and
//! readers are pinned like the single-workflow executor does, and the
//! total rank count per socket must fit the node.

use crate::config::SchedConfig;
use crate::executor::{ExecError, ExecutionParams};
use crate::metrics::RunMetrics;
use pmemflow_platform::{PinError, SocketId};
use pmemflow_workloads::WorkflowSpec;

/// One tenant: a workflow and the configuration it runs under.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// The workflow.
    pub spec: WorkflowSpec,
    /// Its scheduling configuration.
    pub config: SchedConfig,
}

/// Per-tenant attribution of a co-scheduled execution: who ran what,
/// when it finished, and how much the shared device slowed it down.
#[derive(Debug, Clone)]
pub struct TenantBreakdown {
    /// Index of the tenant in the input slice.
    pub index: usize,
    /// Workflow name.
    pub workflow: String,
    /// The configuration the tenant ran under.
    pub config: SchedConfig,
    /// Instant the tenant was admitted (all tenants of one co-scheduled
    /// execution start together at t = 0).
    pub start: f64,
    /// Instant the tenant's last rank finished.
    pub end: f64,
    /// The tenant's runtime running alone on the node, seconds.
    pub solo_total: f64,
    /// `(end - start) / solo_total` — the price of sharing the device
    /// (≥ ~1).
    pub slowdown: f64,
}

/// Result of a co-scheduled execution.
#[derive(Debug, Clone)]
pub struct CoScheduleOutcome {
    /// Per-tenant metrics, in input order (totals measured from t = 0 to
    /// that tenant's completion).
    pub tenants: Vec<RunMetrics>,
    /// Time until every tenant finished.
    pub makespan: f64,
    /// Per-tenant slowdown versus running alone on the node
    /// (`coscheduled_total / solo_total`, ≥ ~1).
    pub interference: Vec<f64>,
    /// Structured per-tenant attribution (same order as `tenants`).
    pub breakdown: Vec<TenantBreakdown>,
}

/// Execute all `tenants` concurrently on one node, sharing the PMEM
/// device. Returns per-tenant metrics plus interference factors.
pub fn execute_coscheduled(
    tenants: &[Tenant],
    params: &ExecutionParams,
) -> Result<CoScheduleOutcome, ExecError> {
    execute_coscheduled_with_baselines(tenants, params, None)
}

/// [`execute_coscheduled`] with optional precomputed solo runtimes.
///
/// Callers that already know each tenant's solo runtime (e.g. a cluster
/// scheduler holding a per-workload sweep cache) pass them as `baselines`
/// (input order) and skip the per-tenant solo simulations this function
/// would otherwise run to compute interference factors.
pub fn execute_coscheduled_with_baselines(
    tenants: &[Tenant],
    params: &ExecutionParams,
    baselines: Option<&[f64]>,
) -> Result<CoScheduleOutcome, ExecError> {
    if tenants.is_empty() {
        return Err(ExecError::Spec("no tenants".into()));
    }
    if let Some(b) = baselines {
        if b.len() != tenants.len() {
            return Err(ExecError::Spec(format!(
                "{} baselines for {} tenants",
                b.len(),
                tenants.len()
            )));
        }
    }
    // Capacity check: ranks per socket across tenants.
    let mut per_socket = [0usize; 2];
    for t in tenants {
        t.spec.validate().map_err(ExecError::Spec)?;
        let writer_socket = match t.config.placement {
            crate::config::Placement::LocW => SocketId(0),
            crate::config::Placement::LocR => SocketId(1),
        };
        per_socket[writer_socket.0] += t.spec.ranks;
        per_socket[writer_socket.peer().0] += t.spec.ranks;
    }
    let cores = params.node.cores_per_socket();
    for (s, &used) in per_socket.iter().enumerate() {
        if used > cores {
            return Err(ExecError::Pin(PinError::NotEnoughCores {
                requested: used,
                available: cores,
                socket: SocketId(s),
            }));
        }
    }

    // Solo baselines for the interference factors (simulated unless the
    // caller already has them).
    let solo = match baselines {
        Some(b) => b.to_vec(),
        None => {
            let mut solo = Vec::with_capacity(tenants.len());
            for t in tenants {
                solo.push(crate::executor::execute(&t.spec, t.config, params)?.total);
            }
            solo
        }
    };

    let metrics = crate::executor::execute_many(tenants, params)?;
    let makespan = metrics.iter().map(|m| m.total).fold(0.0f64, f64::max);
    let interference: Vec<f64> = metrics
        .iter()
        .zip(solo.iter())
        .map(|(m, s)| m.total / s)
        .collect();
    let breakdown = tenants
        .iter()
        .enumerate()
        .map(|(index, t)| TenantBreakdown {
            index,
            workflow: t.spec.name.clone(),
            config: t.config,
            start: 0.0,
            end: metrics[index].total,
            solo_total: solo[index],
            slowdown: interference[index],
        })
        .collect();
    Ok(CoScheduleOutcome {
        tenants: metrics,
        makespan,
        interference,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{micro_2kb, micro_64mb};

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn two_tenants_interfere_but_progress() {
        let tenants = vec![
            Tenant {
                spec: micro_64mb(8),
                config: SchedConfig::S_LOC_W,
            },
            Tenant {
                spec: micro_2kb(8),
                config: SchedConfig::P_LOC_R,
            },
        ];
        let out = execute_coscheduled(&tenants, &params()).unwrap();
        assert_eq!(out.tenants.len(), 2);
        // Interference: each at least as slow as solo, but co-scheduling
        // must beat running them back to back.
        for i in &out.interference {
            assert!(*i >= 0.99, "interference {i}");
        }
        let serial_stack: f64 = out
            .tenants
            .iter()
            .zip(out.interference.iter())
            .map(|(m, i)| m.total / i) // solo totals
            .sum();
        assert!(
            out.makespan < serial_stack,
            "co-scheduling ({}) must beat serial stacking ({serial_stack})",
            out.makespan
        );
    }

    #[test]
    fn bandwidth_bound_tenants_slow_each_other() {
        let tenants = vec![
            Tenant {
                spec: micro_64mb(8),
                config: SchedConfig::S_LOC_W,
            },
            Tenant {
                spec: micro_64mb(8),
                config: SchedConfig::S_LOC_W,
            },
        ];
        let out = execute_coscheduled(&tenants, &params()).unwrap();
        // Two identical bandwidth-bound tenants: strong interference.
        for i in &out.interference {
            assert!(*i > 1.3, "expected >30% slowdown, got {i}");
        }
    }

    #[test]
    fn capacity_enforced() {
        let tenants = vec![
            Tenant {
                spec: micro_64mb(16),
                config: SchedConfig::S_LOC_W,
            },
            Tenant {
                spec: micro_64mb(16),
                config: SchedConfig::S_LOC_W,
            },
        ];
        // 32 ranks per socket on a 28-core socket: must be rejected.
        assert!(matches!(
            execute_coscheduled(&tenants, &params()),
            Err(ExecError::Pin(_))
        ));
    }

    #[test]
    fn empty_tenant_list_rejected() {
        assert!(matches!(
            execute_coscheduled(&[], &params()),
            Err(ExecError::Spec(_))
        ));
    }

    #[test]
    fn breakdown_attributes_each_tenant() {
        let tenants = vec![
            Tenant {
                spec: micro_64mb(8),
                config: SchedConfig::S_LOC_W,
            },
            Tenant {
                spec: micro_2kb(8),
                config: SchedConfig::P_LOC_R,
            },
        ];
        let out = execute_coscheduled(&tenants, &ExecutionParams::default()).unwrap();
        assert_eq!(out.breakdown.len(), 2);
        for (i, b) in out.breakdown.iter().enumerate() {
            assert_eq!(b.index, i);
            assert_eq!(b.workflow, tenants[i].spec.name);
            assert_eq!(b.config, tenants[i].config);
            assert_eq!(b.start, 0.0);
            assert!((b.end - out.tenants[i].total).abs() < 1e-12);
            assert!((b.slowdown - out.interference[i]).abs() < 1e-12);
            assert!((b.end / b.solo_total - b.slowdown).abs() < 1e-9);
        }
    }

    #[test]
    fn provided_baselines_skip_solo_runs_and_scale_slowdowns() {
        let tenants = vec![Tenant {
            spec: micro_2kb(8),
            config: SchedConfig::P_LOC_R,
        }];
        let solo = crate::executor::execute(&tenants[0].spec, tenants[0].config, &params())
            .unwrap()
            .total;
        let from_sim = execute_coscheduled(&tenants, &params()).unwrap();
        let from_cache =
            execute_coscheduled_with_baselines(&tenants, &params(), Some(&[solo])).unwrap();
        assert_eq!(
            from_sim.interference[0].to_bits(),
            from_cache.interference[0].to_bits()
        );
        // A wrong-length baseline slice is a spec error.
        assert!(matches!(
            execute_coscheduled_with_baselines(&tenants, &params(), Some(&[solo, solo])),
            Err(ExecError::Spec(_))
        ));
    }

    #[test]
    fn single_tenant_matches_solo_execution() {
        let t = Tenant {
            spec: micro_2kb(8),
            config: SchedConfig::P_LOC_R,
        };
        let solo = crate::executor::execute(&t.spec, t.config, &params()).unwrap();
        let out = execute_coscheduled(std::slice::from_ref(&t), &params()).unwrap();
        assert!((out.tenants[0].total - solo.total).abs() < 1e-9);
        assert!((out.interference[0] - 1.0).abs() < 1e-9);
    }
}
