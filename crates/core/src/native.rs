//! Native execution: real threads moving real bytes.
//!
//! The DES executor predicts timing; this module actually *runs* a
//! workflow: writer threads generate payloads and `put` them into a real
//! [`ObjectStore`] (NOVA-like or NVStream-like over a [`PmemRegion`]),
//! reader threads `get` and verify every version. Device behaviour is
//! imposed by a [`Shaper`] that delays each operation according to the same
//! [`DeviceProfile`] curves the DES uses — scaled by `time_scale` so demos
//! finish quickly on commodity hardware.
//!
//! This is the executable-on-your-laptop counterpart of the paper's
//! deployments: it validates the data path (every byte read back is
//! checked) and demonstrates the scheduling configurations with real
//! concurrency, while absolute timing fidelity remains the DES's job.

use crate::config::{ExecMode, SchedConfig};
use pmemflow_des::{Direction, Locality};
use pmemflow_iostack::{NovaFs, NvStore, ObjectStore, StackKind};
use pmemflow_platform::SocketId;
use pmemflow_pmem::{DeviceProfile, InterleaveGeometry, PmemRegion};
use pmemflow_workloads::WorkflowSpec;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parameters for a native run.
#[derive(Debug, Clone)]
pub struct NativeParams {
    /// Device model used for shaping.
    pub profile: DeviceProfile,
    /// Which store implementation carries the channel.
    pub stack: StackKind,
    /// Backing region size in bytes (must hold every version of every
    /// stream).
    pub region_bytes: usize,
    /// Wall seconds per simulated second (e.g. `1e-3` runs a 100 s
    /// workflow in 100 ms of shaping delays).
    pub time_scale: f64,
}

impl Default for NativeParams {
    fn default() -> Self {
        Self {
            profile: DeviceProfile::optane_gen1(),
            stack: StackKind::NvStream,
            region_bytes: 64 << 20,
            time_scale: 1e-4,
        }
    }
}

/// Outcome of a native run.
#[derive(Debug, Clone)]
pub struct NativeReport {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Sum of all shaping delays (the device model's time, free of thread
    /// scheduling and store-implementation overheads).
    pub shaped: Duration,
    /// Bytes written by all writers.
    pub bytes_written: u64,
    /// Bytes read (and content-verified) by all readers.
    pub bytes_verified: u64,
    /// Number of objects whose payload failed verification (always 0 for a
    /// correct store).
    pub verification_failures: u64,
}

/// Rate shaper: tracks in-flight operations per (direction, locality)
/// class and delays each operation by `bytes / fair_rate`, where the fair
/// rate comes from the device profile's class capacity at the current
/// concurrency — the same quantities the fluid model uses, applied
/// per-operation.
pub struct Shaper {
    profile: DeviceProfile,
    time_scale: f64,
    in_flight: Mutex<[usize; 4]>,
    shaped_total: Mutex<f64>,
}

fn class_index(dir: Direction, loc: Locality) -> usize {
    match (dir, loc) {
        (Direction::Read, Locality::Local) => 0,
        (Direction::Read, Locality::Remote) => 1,
        (Direction::Write, Locality::Local) => 2,
        (Direction::Write, Locality::Remote) => 3,
    }
}

impl Shaper {
    /// Build a shaper for `profile`, with delays scaled by `time_scale`.
    pub fn new(profile: DeviceProfile, time_scale: f64) -> Self {
        Self {
            profile,
            time_scale,
            in_flight: Mutex::new([0; 4]),
            shaped_total: Mutex::new(0.0),
        }
    }

    /// Total shaping delay handed out so far, across all threads. This is
    /// the model's view of device time, free of thread-scheduling noise.
    pub fn shaped_total(&self) -> Duration {
        Duration::from_secs_f64(*self.shaped_total.lock().unwrap())
    }

    /// Compute the shaping delay for an operation of `bytes` bytes. The
    /// operation counts as in-flight for the duration of the returned
    /// delay, so concurrent callers see each other's pressure.
    pub fn delay_for(
        &self,
        dir: Direction,
        loc: Locality,
        object_bytes: u64,
        bytes: u64,
    ) -> Duration {
        let idx = class_index(dir, loc);
        let (n_total, n_remote, n_class) = {
            let g = self.in_flight.lock().unwrap();
            let t: usize = g.iter().sum::<usize>() + 1;
            (
                t,
                g[1] + g[3] + usize::from(idx == 1 || idx == 3),
                g[idx] + 1,
            )
        };
        let cap =
            self.profile
                .class_capacity(dir, loc, object_bytes, n_total as f64, n_remote as f64);
        let single = self.profile.single_thread_rate(dir, loc, object_bytes);
        let rate = (cap / n_class.max(1) as f64).min(single).max(1.0);
        Duration::from_secs_f64(bytes as f64 / rate * self.time_scale)
    }

    /// Account an operation of `bytes` bytes: registers it as in-flight,
    /// sleeps the shaping delay, deregisters, and returns the delay.
    pub fn shape(&self, dir: Direction, loc: Locality, object_bytes: u64, bytes: u64) -> Duration {
        let idx = class_index(dir, loc);
        {
            let mut g = self.in_flight.lock().unwrap();
            g[idx] += 1;
        }
        let delay = self.delay_for(dir, loc, object_bytes, bytes);
        std::thread::sleep(delay);
        {
            let mut g = self.in_flight.lock().unwrap();
            g[idx] -= 1;
        }
        *self.shaped_total.lock().unwrap() += delay.as_secs_f64();
        delay
    }
}

fn make_store(params: &NativeParams) -> Box<dyn ObjectStore + Send> {
    let region = PmemRegion::new(
        params.region_bytes,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    );
    match params.stack {
        StackKind::Nova => Box::new(
            NovaFs::format(region, 64, 1 << 20).expect("region large enough for NOVA layout"),
        ),
        StackKind::NvStream => {
            Box::new(NvStore::format(region).expect("region large enough for NVStream"))
        }
    }
}

/// Deterministic payload for (rank, version, len): readers recompute and
/// compare, so any store corruption is caught.
pub fn payload(rank: usize, version: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    // splitmix64-style scramble so that nearby (rank, version) pairs give
    // unrelated streams.
    let mut x = (rank as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(version.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    if x == 0 {
        x = 0x9e37_79b9_7f4a_7c15;
    }
    // xorshift64, emitted a word at a time (fast enough that payload
    // generation never swamps the shaped I/O delays, even in debug builds).
    while v.len() + 8 <= len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.extend_from_slice(&x.to_le_bytes());
    }
    while v.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push((x & 0xff) as u8);
    }
    v
}

/// Run `spec` natively under `config`. Object counts and sizes should be
/// laptop-scale (use [`WorkflowSpec::with_ranks`] and small patterns);
/// the suite's 80 GB workloads belong in the DES.
///
/// Each writer rank owns its own store instance (NVStream's per-writer
/// logs; NOVA's per-inode logs), so rank pairs never serialize on a shared
/// lock — `region_bytes` is the per-rank store size.
pub fn run_native(
    spec: &WorkflowSpec,
    config: SchedConfig,
    params: &NativeParams,
) -> Result<NativeReport, String> {
    spec.validate()?;
    let stores: Vec<Arc<Mutex<Box<dyn ObjectStore + Send>>>> = (0..spec.ranks)
        .map(|_| Arc::new(Mutex::new(make_store(params))))
        .collect();
    let shaper = Arc::new(Shaper::new(params.profile.clone(), params.time_scale));
    let w_loc = config.writer_locality();
    let r_loc = config.reader_locality();
    // Socket bookkeeping mirrors the DES deployment (channel on socket 0).
    let _writer_socket = match config.placement {
        crate::config::Placement::LocW => SocketId(0),
        crate::config::Placement::LocR => SocketId(1),
    };

    let object_bytes = spec.writer.io.object_bytes;
    let objects = spec.writer.io.objects_per_snapshot;
    let iterations = spec.iterations;
    let bytes_written = Arc::new(Mutex::new(0u64));
    let bytes_verified = Arc::new(Mutex::new(0u64));
    let failures = Arc::new(Mutex::new(0u64));

    // Version announcements: writers -> readers (one channel per rank pair).
    let mut senders: Vec<Sender<u64>> = Vec::new();
    let mut receivers: Vec<Receiver<u64>> = Vec::new();
    for _ in 0..spec.ranks {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }

    let start = Instant::now();
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            // Writers.
            for (rank, tx) in senders.into_iter().enumerate() {
                let store = Arc::clone(&stores[rank]);
                let shaper = Arc::clone(&shaper);
                let bytes_written = Arc::clone(&bytes_written);
                scope.spawn(move || {
                    for v in 1..=iterations {
                        for obj in 0..objects {
                            let data =
                                payload(rank * 1000 + obj as usize, v, object_bytes as usize);
                            shaper.shape(Direction::Write, w_loc, object_bytes, object_bytes);
                            store
                                .lock()
                                .unwrap()
                                .put(&format!("w{rank}/o{obj}"), v, &data)
                                .expect("native put");
                            *bytes_written.lock().unwrap() += object_bytes;
                        }
                        tx.send(v).expect("reader alive");
                    }
                });
            }
            // Readers.
            for (rank, rx) in receivers.into_iter().enumerate() {
                let store = Arc::clone(&stores[rank]);
                let shaper = Arc::clone(&shaper);
                let bytes_verified = Arc::clone(&bytes_verified);
                let failures = Arc::clone(&failures);
                let mode = config.mode;
                scope.spawn(move || {
                    let consume = |v: u64| {
                        for obj in 0..objects {
                            shaper.shape(Direction::Read, r_loc, object_bytes, object_bytes);
                            let got = store
                                .lock()
                                .unwrap()
                                .get(&format!("w{rank}/o{obj}"), v)
                                .expect("native get");
                            let want =
                                payload(rank * 1000 + obj as usize, v, object_bytes as usize);
                            if got != want {
                                *failures.lock().unwrap() += 1;
                            } else {
                                *bytes_verified.lock().unwrap() += object_bytes;
                            }
                        }
                    };
                    match mode {
                        ExecMode::Parallel => {
                            for v in rx.iter().take(iterations as usize) {
                                consume(v);
                            }
                        }
                        ExecMode::Serial => {
                            // Drain all announcements first (writer done), then
                            // read every version.
                            let versions: Vec<u64> = rx.iter().take(iterations as usize).collect();
                            for v in versions {
                                consume(v);
                            }
                        }
                    }
                });
            }
        });
    }))
    .map_err(|_| "a native worker panicked".to_string())?;

    let written = *bytes_written.lock().unwrap();
    let verified = *bytes_verified.lock().unwrap();
    let failed = *failures.lock().unwrap();
    Ok(NativeReport {
        wall: start.elapsed(),
        shaped: shaper.shaped_total(),
        bytes_written: written,
        bytes_verified: verified,
        verification_failures: failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{ComponentSpec, IoPattern};

    fn tiny_spec(ranks: usize, mode_objects: u64) -> WorkflowSpec {
        let io = IoPattern {
            objects_per_snapshot: mode_objects,
            object_bytes: 1024,
        };
        WorkflowSpec {
            name: "native-tiny".into(),
            writer: ComponentSpec {
                name: "w".into(),
                compute_per_iteration: 0.0,
                io,
            },
            reader: ComponentSpec {
                name: "r".into(),
                compute_per_iteration: 0.0,
                io,
            },
            ranks,
            iterations: 3,
        }
    }

    fn fast_params() -> NativeParams {
        NativeParams {
            time_scale: 1e-7,
            region_bytes: 8 << 20,
            ..Default::default()
        }
    }

    #[test]
    fn native_parallel_verifies_all_bytes() {
        let spec = tiny_spec(4, 4);
        let rep = run_native(&spec, SchedConfig::P_LOC_R, &fast_params()).unwrap();
        let expect = 4 * 4 * 3 * 1024u64;
        assert_eq!(rep.bytes_written, expect);
        assert_eq!(rep.bytes_verified, expect);
        assert_eq!(rep.verification_failures, 0);
    }

    #[test]
    fn native_serial_verifies_all_bytes() {
        let spec = tiny_spec(2, 2);
        let rep = run_native(&spec, SchedConfig::S_LOC_W, &fast_params()).unwrap();
        assert_eq!(rep.verification_failures, 0);
        assert_eq!(rep.bytes_verified, 2 * 2 * 3 * 1024);
    }

    #[test]
    fn native_on_nova_store() {
        let spec = tiny_spec(2, 2);
        let params = NativeParams {
            stack: StackKind::Nova,
            ..fast_params()
        };
        let rep = run_native(&spec, SchedConfig::P_LOC_W, &params).unwrap();
        assert_eq!(rep.verification_failures, 0);
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        assert_eq!(payload(1, 2, 128), payload(1, 2, 128));
        assert_ne!(payload(1, 2, 128), payload(1, 3, 128));
        assert_ne!(payload(1, 2, 128), payload(2, 2, 128));
    }

    #[test]
    fn shaper_remote_write_slower_than_local() {
        let s = Shaper::new(DeviceProfile::optane_gen1(), 1.0);
        let local = s.shape(Direction::Write, Locality::Local, 1 << 20, 1 << 20);
        let remote = s.shape(Direction::Write, Locality::Remote, 1 << 20, 1 << 20);
        assert!(remote > local);
    }
}
