//! End-to-end measurements of one workflow execution.
//!
//! Mirrors the paper's methodology (§V "Measurements"): end-to-end runtime
//! for every run; for serial runs, the split into writer and reader phases
//! (the split bar graphs of Figs. 4–9) to attribute placement effects.

use crate::config::SchedConfig;
use pmemflow_des::ResourceReport;

/// Per-component aggregates (means over ranks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentMetrics {
    /// Mean seconds a rank spent in kernel compute.
    pub compute_time: f64,
    /// Mean seconds a rank spent with an I/O flow in flight.
    pub io_time: f64,
    /// Mean seconds a rank spent waiting on versions.
    pub wait_time: f64,
    /// Total times the component's ranks parked on a version channel.
    pub channel_waits: u64,
    /// Instant the slowest rank of the component finished.
    pub finish_time: f64,
    /// Total bytes the component moved.
    pub bytes: f64,
}

impl ComponentMetrics {
    /// I/O index as defined in §IV-C: I/O time over iteration (busy) time.
    /// Meaningful when measured standalone, serially, with local PMEM.
    pub fn io_index(&self) -> f64 {
        let busy = self.compute_time + self.io_time;
        if busy <= 0.0 {
            0.0
        } else {
            self.io_time / busy
        }
    }
}

/// Complete measurements of one workflow execution under one configuration.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// The configuration that produced this run.
    pub config: SchedConfig,
    /// End-to-end runtime, seconds (both components finished).
    pub total: f64,
    /// Writer-side aggregates.
    pub writer: ComponentMetrics,
    /// Reader-side aggregates.
    pub reader: ComponentMetrics,
    /// Device traffic/occupancy report.
    pub device: ResourceReport,
    /// Events processed by the engine (diagnostics).
    pub events: u64,
    /// Largest event-heap depth the engine observed (diagnostics).
    pub max_heap_depth: usize,
    /// Per-rank span timelines when requested
    /// ([`crate::ExecutionParams::record_timeline`]).
    pub timeline: Option<pmemflow_des::Timeline>,
}

impl RunMetrics {
    /// For serially executed workflows the paper splits the bar into the
    /// writer phase and the reader phase; the writer phase ends when the
    /// last writer finishes.
    pub fn serial_split(&self) -> (f64, f64) {
        let w = self.writer.finish_time;
        (w, (self.total - w).max(0.0))
    }

    /// Effective end-to-end throughput: bytes written + read over runtime.
    pub fn throughput(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            (self.writer.bytes + self.reader.bytes) / self.total
        }
    }
}

/// Results of a workflow across all four configurations.
#[derive(Debug, Clone)]
pub struct ConfigSweep {
    /// Workflow name.
    pub workflow: String,
    /// One entry per configuration, in [`SchedConfig::ALL`] order.
    pub runs: Vec<RunMetrics>,
}

impl ConfigSweep {
    /// The best (minimum-runtime) configuration.
    pub fn best(&self) -> &RunMetrics {
        self.runs
            .iter()
            .min_by(|a, b| a.total.total_cmp(&b.total))
            .expect("sweep has runs")
    }

    /// The worst configuration.
    pub fn worst(&self) -> &RunMetrics {
        self.runs
            .iter()
            .max_by(|a, b| a.total.total_cmp(&b.total))
            .expect("sweep has runs")
    }

    /// Runtime of `config` normalized to the best configuration (≥ 1.0);
    /// the metric of the paper's Fig. 10.
    pub fn normalized(&self, config: SchedConfig) -> f64 {
        let best = self.best().total;
        let run = self
            .runs
            .iter()
            .find(|r| r.config == config)
            .expect("config present in sweep");
        run.total / best
    }

    /// Percent slowdown of the worst configuration vs the best — the
    /// paper's headline "up to 70%" number.
    pub fn worst_case_loss_percent(&self) -> f64 {
        (self.worst().total / self.best().total - 1.0) * 100.0
    }

    /// The run for a specific configuration.
    pub fn run(&self, config: SchedConfig) -> &RunMetrics {
        self.runs
            .iter()
            .find(|r| r.config == config)
            .expect("config present in sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(config: SchedConfig, total: f64, writer_finish: f64) -> RunMetrics {
        RunMetrics {
            config,
            total,
            writer: ComponentMetrics {
                finish_time: writer_finish,
                bytes: 10.0,
                ..Default::default()
            },
            reader: ComponentMetrics {
                finish_time: total,
                bytes: 10.0,
                ..Default::default()
            },
            device: ResourceReport::default(),
            events: 0,
            max_heap_depth: 0,
            timeline: None,
        }
    }

    fn sweep() -> ConfigSweep {
        ConfigSweep {
            workflow: "t".into(),
            runs: vec![
                metrics(SchedConfig::S_LOC_W, 10.0, 6.0),
                metrics(SchedConfig::S_LOC_R, 12.0, 8.0),
                metrics(SchedConfig::P_LOC_W, 17.0, 15.0),
                metrics(SchedConfig::P_LOC_R, 11.0, 9.0),
            ],
        }
    }

    #[test]
    fn best_and_worst() {
        let s = sweep();
        assert_eq!(s.best().config, SchedConfig::S_LOC_W);
        assert_eq!(s.worst().config, SchedConfig::P_LOC_W);
        assert!((s.worst_case_loss_percent() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn normalization() {
        let s = sweep();
        assert!((s.normalized(SchedConfig::S_LOC_W) - 1.0).abs() < 1e-12);
        assert!((s.normalized(SchedConfig::S_LOC_R) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn serial_split_sums_to_total() {
        let m = metrics(SchedConfig::S_LOC_W, 10.0, 6.0);
        let (w, r) = m.serial_split();
        assert_eq!(w, 6.0);
        assert_eq!(r, 4.0);
    }

    #[test]
    fn io_index_bounds() {
        let mut c = ComponentMetrics::default();
        assert_eq!(c.io_index(), 0.0);
        c.io_time = 3.0;
        c.compute_time = 1.0;
        assert!((c.io_index() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn throughput() {
        let m = metrics(SchedConfig::S_LOC_W, 10.0, 6.0);
        assert!((m.throughput() - 2.0).abs() < 1e-12);
    }
}
