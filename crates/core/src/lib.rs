//! # pmemflow-core — in situ workflow execution over shared PMEM
//!
//! The study harness of the reproduction: the paper's scheduler
//! configuration space (Table I), an executor that deploys a coupled
//! simulation+analytics workflow onto the modeled dual-socket node and
//! runs it through the fluid discrete-event engine, and the measurement
//! types behind every figure.
//!
//! ```
//! use pmemflow_core::{execute, sweep, ExecutionParams, SchedConfig};
//! use pmemflow_workloads::micro_64mb;
//!
//! let params = ExecutionParams::default();
//! let sweep = sweep(&micro_64mb(8), &params).unwrap();
//! println!(
//!     "best config for micro-64MB@8: {} ({:.1}s)",
//!     sweep.best().config,
//!     sweep.best().total
//! );
//! ```

#![warn(missing_docs)]

mod config;
pub mod coschedule;
mod executor;
mod metrics;
pub mod native;
pub mod report;
pub mod runner;

pub use config::{ExecMode, Placement, SchedConfig};
pub use coschedule::{
    execute_coscheduled, execute_coscheduled_with_baselines, CoScheduleOutcome, Tenant,
    TenantBreakdown,
};
pub use executor::{
    execute, execute_component_standalone, sweep, ExecError, ExecutionParams, StandaloneReport,
};
pub use metrics::{ComponentMetrics, ConfigSweep, RunMetrics};
pub use runner::{
    full_matrix, json_escape, json_f64, map_ordered, run_matrix, RunOutcome, RunRequest,
};
