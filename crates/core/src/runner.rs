//! Deterministic parallel suite runner with structured observability.
//!
//! The paper's evaluation is a 144-run matrix — 18 suite workloads × the
//! four Table I configurations × the two I/O stacks. Each run is an
//! independent simulation, so the matrix fans out over a bounded pool of
//! OS threads; results are collected **in submission order**, which makes
//! the output bit-identical to a sequential run for any thread count (the
//! simulations themselves are deterministic, and nothing about scheduling
//! order can leak into a run's result).
//!
//! Per-run failures are surfaced as values ([`RunOutcome::result`]), never
//! as panics of the whole matrix: a worker that panics poisons only its
//! own run. Every outcome serializes to one line of JSON ([JSON Lines])
//! without any serialization dependency.
//!
//! [JSON Lines]: https://jsonlines.org

use crate::config::SchedConfig;
use crate::executor::{execute, ExecutionParams};
use crate::metrics::RunMetrics;
use pmemflow_iostack::StackKind;
use pmemflow_workloads::{paper_suite, WorkflowSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of the run matrix: a workflow under one configuration on one
/// I/O stack.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Workflow display name (used in records and trace file names).
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// The I/O stack carrying the channel.
    pub stack: StackKind,
    /// The Table I configuration.
    pub config: SchedConfig,
    /// The workflow to execute.
    pub spec: WorkflowSpec,
}

/// The result of one matrix cell: the request identity, the simulation's
/// metrics (or the failure, as a value), and the host wall-clock time the
/// run took.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// The I/O stack used.
    pub stack: StackKind,
    /// The configuration used.
    pub config: SchedConfig,
    /// The run's metrics, or the error / panic message.
    pub result: Result<RunMetrics, String>,
    /// Host wall-clock seconds the run took (not deterministic; excluded
    /// from reproducibility comparisons).
    pub wall_secs: f64,
}

/// Map `f` over `items` with at most `jobs` worker threads, returning the
/// results **in input order**. A panic in `f` becomes an `Err` carrying the
/// panic message for that item only. `jobs` is clamped to at least 1.
///
/// Workers claim items from a shared counter, so the assignment of items
/// to threads is racy — but each result lands in its item's slot, so the
/// returned vector is identical for any `jobs`.
pub fn map_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let n = items.len();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|p| {
                    p.downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string())
                });
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// Execute every request with at most `jobs` concurrent simulations.
/// `params.stack` is overridden per request; everything else (profile,
/// node, timeline recording, ...) applies to all runs. Outcomes come back
/// in submission order and are bit-identical for any `jobs ≥ 1`.
pub fn run_matrix(
    requests: Vec<RunRequest>,
    params: &ExecutionParams,
    jobs: usize,
) -> Vec<RunOutcome> {
    let results = map_ordered(requests, jobs, |req| {
        let started = std::time::Instant::now();
        let p = params.clone().with_stack(req.stack);
        let result = execute(&req.spec, req.config, &p).map_err(|e| e.to_string());
        (req.clone(), result, started.elapsed().as_secs_f64())
    });
    results
        .into_iter()
        .map(|r| match r {
            Ok((req, result, wall_secs)) => RunOutcome {
                workflow: req.workflow,
                ranks: req.ranks,
                stack: req.stack,
                config: req.config,
                result,
                wall_secs,
            },
            // The executor never panics in normal operation; if it does,
            // the request identity is lost with the worker, so report a
            // placeholder record rather than dropping the row.
            Err(msg) => RunOutcome {
                workflow: "<panicked>".into(),
                ranks: 0,
                stack: StackKind::NvStream,
                config: SchedConfig::ALL[0],
                result: Err(msg),
                wall_secs: 0.0,
            },
        })
        .collect()
}

/// Build the paper's full evaluation matrix: 18 suite workloads × 4
/// Table I configurations × 2 I/O stacks = 144 requests, in a fixed
/// deterministic order (stack-major, then suite order, then
/// [`SchedConfig::ALL`] order).
pub fn full_matrix() -> Vec<RunRequest> {
    let mut requests = Vec::with_capacity(144);
    for stack in [StackKind::NvStream, StackKind::Nova] {
        for entry in paper_suite() {
            for config in SchedConfig::ALL {
                requests.push(RunRequest {
                    workflow: entry.family.name().to_string(),
                    ranks: entry.ranks,
                    stack,
                    config,
                    spec: entry.spec.clone(),
                });
            }
        }
    }
    requests
}

// The canonical JSON string/number formatting rules live in the engine
// crate ([`pmemflow_des::json`]) so every emitter in the workspace —
// JSONL records here, Chrome traces in `des`, the serving daemon's
// response bodies — shares one implementation. Re-exported under the
// original paths for compatibility.
pub use pmemflow_des::json::{json_escape, json_f64};

impl RunOutcome {
    /// Serialize as one JSON Lines record (no trailing newline).
    ///
    /// Successful runs carry `"ok":true` plus the full set of metrics;
    /// failed runs carry `"ok":false` and an `"error"` string. All fields
    /// except `wall_secs` are deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!(
            "\"workflow\":\"{}\",\"ranks\":{},\"stack\":\"{}\",\"config\":\"{}\"",
            json_escape(&self.workflow),
            self.ranks,
            self.stack.name(),
            self.config.label(),
        ));
        match &self.result {
            Ok(m) => {
                let (serial_w, serial_r) = m.serial_split();
                out.push_str(&format!(
                    ",\"ok\":true,\"total_s\":{},\"serial_split\":{{\"writer_s\":{},\"reader_s\":{}}}",
                    json_f64(m.total),
                    json_f64(serial_w),
                    json_f64(serial_r),
                ));
                for (label, c) in [("writer", &m.writer), ("reader", &m.reader)] {
                    out.push_str(&format!(
                        ",\"{}\":{{\"compute_s\":{},\"io_s\":{},\"wait_s\":{},\"channel_waits\":{},\"bytes\":{},\"finish_s\":{}}}",
                        label,
                        json_f64(c.compute_time),
                        json_f64(c.io_time),
                        json_f64(c.wait_time),
                        c.channel_waits,
                        json_f64(c.bytes),
                        json_f64(c.finish_time),
                    ));
                }
                out.push_str(&format!(
                    ",\"device\":{{\"peak_concurrency\":{},\"mean_busy_concurrency\":{},\"total_bytes\":{}}}",
                    m.device.peak_concurrency,
                    json_f64(m.device.mean_busy_concurrency()),
                    json_f64(m.device.total_bytes()),
                ));
                out.push_str(&format!(
                    ",\"events\":{},\"max_heap_depth\":{}",
                    m.events, m.max_heap_depth
                ));
            }
            Err(e) => {
                out.push_str(&format!(",\"ok\":false,\"error\":\"{}\"", json_escape(e)));
            }
        }
        out.push_str(&format!(",\"wall_secs\":{}", json_f64(self.wall_secs)));
        out.push('}');
        out
    }

    /// The record with the (non-deterministic) wall-clock field zeroed —
    /// what reproducibility comparisons should diff.
    pub fn deterministic_jsonl(&self) -> String {
        let mut copy = self.clone();
        copy.wall_secs = 0.0;
        copy.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{micro_2kb, micro_64mb};

    fn small_requests() -> Vec<RunRequest> {
        let mut reqs = Vec::new();
        for (name, spec) in [("micro-2KB", micro_2kb(4)), ("micro-64MB", micro_64mb(4))] {
            for config in SchedConfig::ALL {
                reqs.push(RunRequest {
                    workflow: name.to_string(),
                    ranks: 4,
                    stack: StackKind::NvStream,
                    config,
                    spec: spec.clone(),
                });
            }
        }
        reqs
    }

    #[test]
    fn map_ordered_preserves_input_order() {
        for jobs in [1usize, 2, 7, 64] {
            let out = map_ordered((0..25).collect(), jobs, |&i: &i32| i * 2);
            let want: Vec<_> = (0..25).map(|i| Ok(i * 2)).collect();
            assert_eq!(out, want, "jobs={jobs}");
        }
    }

    #[test]
    fn map_ordered_surfaces_panics_as_values() {
        let out = map_ordered(vec![1, 2, 3], 2, |&i: &i32| {
            if i == 2 {
                panic!("boom on {i}");
            }
            i
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.contains("boom on 2"), "got {err:?}");
    }

    #[test]
    fn map_ordered_handles_empty_and_zero_jobs() {
        let out: Vec<Result<i32, String>> = map_ordered(Vec::new(), 0, |&i: &i32| i);
        assert!(out.is_empty());
        let out = map_ordered(vec![7], 0, |&i: &i32| i + 1);
        assert_eq!(out, vec![Ok(8)]);
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_sequential() {
        let params = ExecutionParams::default();
        let seq = run_matrix(small_requests(), &params, 1);
        let par = run_matrix(small_requests(), &params, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.deterministic_jsonl(), b.deterministic_jsonl());
            let (ma, mb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ma.total.to_bits(), mb.total.to_bits());
            assert_eq!(ma.events, mb.events);
        }
    }

    #[test]
    fn full_matrix_is_the_papers_144_runs() {
        let m = full_matrix();
        assert_eq!(m.len(), 144);
        // 72 per stack, every workload appears under all four configs.
        let nv = m.iter().filter(|r| r.stack == StackKind::NvStream).count();
        assert_eq!(nv, 72);
        for config in SchedConfig::ALL {
            assert_eq!(m.iter().filter(|r| r.config == config).count(), 36);
        }
    }

    #[test]
    fn jsonl_records_are_wellformed() {
        let params = ExecutionParams::default();
        let outcomes = run_matrix(small_requests()[..2].to_vec(), &params, 2);
        for o in outcomes {
            let line = o.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(!line.contains('\n'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            for key in [
                "\"workflow\":",
                "\"ranks\":",
                "\"stack\":",
                "\"config\":",
                "\"ok\":true",
                "\"total_s\":",
                "\"serial_split\":",
                "\"writer\":",
                "\"reader\":",
                "\"channel_waits\":",
                "\"device\":",
                "\"peak_concurrency\":",
                "\"events\":",
                "\"max_heap_depth\":",
                "\"wall_secs\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
    }

    #[test]
    fn failures_become_error_records() {
        let reqs = vec![RunRequest {
            workflow: "too-big".into(),
            ranks: 99,
            stack: StackKind::NvStream,
            config: SchedConfig::ALL[0],
            spec: micro_64mb(99), // cannot pin 99 ranks on a 28-core socket
        }];
        let out = run_matrix(reqs, &ExecutionParams::default(), 2);
        assert_eq!(out.len(), 1);
        let line = out[0].to_jsonl();
        assert!(out[0].result.is_err());
        assert!(
            line.contains("\"ok\":false") && line.contains("\"error\":"),
            "{line}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
