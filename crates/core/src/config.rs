//! The scheduler configuration space (paper Table I).
//!
//! Two binary decisions define the four configurations the paper studies:
//!
//! * **Execution mode** — *Serial* (analytics starts after the simulation
//!   has completed; PMEM accesses never overlap) or *Parallel* (components
//!   run concurrently, the reader pipelining one version behind the
//!   writer).
//! * **Placement** — which component is pinned to the socket that owns the
//!   PMEM streaming channel: *LocW* (local-write / remote-read) or *LocR*
//!   (remote-write / local-read).

use pmemflow_des::Locality;

/// Serial or parallel component scheduling (Table I "Execution Mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Analytics runs only after the simulation has fully completed.
    Serial,
    /// Simulation and analytics run concurrently (pipelined by version).
    Parallel,
}

/// PMEM placement relative to the components (Table I "Placement").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// local-write / remote-read: the channel lives on the writer's socket.
    LocW,
    /// remote-write / local-read: the channel lives on the reader's socket.
    LocR,
}

/// One of the paper's four scheduler configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// PMEM placement.
    pub placement: Placement,
}

impl SchedConfig {
    /// Serial, local-write/remote-read.
    pub const S_LOC_W: SchedConfig = SchedConfig {
        mode: ExecMode::Serial,
        placement: Placement::LocW,
    };
    /// Serial, remote-write/local-read.
    pub const S_LOC_R: SchedConfig = SchedConfig {
        mode: ExecMode::Serial,
        placement: Placement::LocR,
    };
    /// Parallel, local-write/remote-read.
    pub const P_LOC_W: SchedConfig = SchedConfig {
        mode: ExecMode::Parallel,
        placement: Placement::LocW,
    };
    /// Parallel, remote-write/local-read.
    pub const P_LOC_R: SchedConfig = SchedConfig {
        mode: ExecMode::Parallel,
        placement: Placement::LocR,
    };

    /// All four configurations in Table I order.
    pub const ALL: [SchedConfig; 4] = [
        SchedConfig::S_LOC_W,
        SchedConfig::S_LOC_R,
        SchedConfig::P_LOC_W,
        SchedConfig::P_LOC_R,
    ];

    /// The paper's label, e.g. `"S-LocW"`.
    pub fn label(&self) -> &'static str {
        match (self.mode, self.placement) {
            (ExecMode::Serial, Placement::LocW) => "S-LocW",
            (ExecMode::Serial, Placement::LocR) => "S-LocR",
            (ExecMode::Parallel, Placement::LocW) => "P-LocW",
            (ExecMode::Parallel, Placement::LocR) => "P-LocR",
        }
    }

    /// Parse a paper label (`"S-LocW"` etc., case-insensitive).
    pub fn parse(s: &str) -> Option<SchedConfig> {
        let norm = s.trim().to_ascii_lowercase();
        match norm.as_str() {
            "s-locw" => Some(SchedConfig::S_LOC_W),
            "s-locr" => Some(SchedConfig::S_LOC_R),
            "p-locw" => Some(SchedConfig::P_LOC_W),
            "p-locr" => Some(SchedConfig::P_LOC_R),
            _ => None,
        }
    }

    /// The writer's locality relative to the PMEM channel.
    pub fn writer_locality(&self) -> Locality {
        match self.placement {
            Placement::LocW => Locality::Local,
            Placement::LocR => Locality::Remote,
        }
    }

    /// The reader's locality relative to the PMEM channel.
    pub fn reader_locality(&self) -> Locality {
        match self.placement {
            Placement::LocW => Locality::Remote,
            Placement::LocR => Locality::Local,
        }
    }
}

impl std::fmt::Display for SchedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_distinct_configs() {
        let mut labels: Vec<_> = SchedConfig::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for c in SchedConfig::ALL {
            assert_eq!(SchedConfig::parse(c.label()), Some(c));
            assert_eq!(SchedConfig::parse(&c.label().to_lowercase()), Some(c));
        }
        assert_eq!(SchedConfig::parse("bogus"), None);
    }

    #[test]
    fn localities_are_opposite() {
        for c in SchedConfig::ALL {
            assert_ne!(c.writer_locality(), c.reader_locality());
        }
        assert_eq!(SchedConfig::S_LOC_W.writer_locality(), Locality::Local);
        assert_eq!(SchedConfig::P_LOC_R.reader_locality(), Locality::Local);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(SchedConfig::P_LOC_W.to_string(), "P-LocW");
    }
}
