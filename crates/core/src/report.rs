//! Plain-text/CSV/Markdown emitters for run results.
//!
//! The figure binaries in `pmemflow-bench` print the same rows and series
//! the paper's plots show; these helpers keep the formatting in one place.

use crate::config::SchedConfig;
use crate::metrics::ConfigSweep;

/// Format seconds with three decimals.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format bytes as a human-readable power-of-two quantity.
pub fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

/// One figure-panel table: runtimes per configuration, split for serial
/// runs (the paper's split bar graphs).
pub fn panel_table(sweep: &ConfigSweep) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {}\n", sweep.workflow));
    out.push_str("config  total_s   writer_s  reader_s  norm\n");
    for run in &sweep.runs {
        let (w, r) = match run.config.mode {
            crate::config::ExecMode::Serial => run.serial_split(),
            crate::config::ExecMode::Parallel => (run.writer.finish_time, 0.0),
        };
        out.push_str(&format!(
            "{:<7} {:>8} {:>9} {:>9} {:>5.2}{}\n",
            run.config.label(),
            fmt_secs(run.total),
            fmt_secs(w),
            fmt_secs(r),
            sweep.normalized(run.config),
            if run.config == sweep.best().config {
                "  <- best"
            } else {
                ""
            }
        ));
    }
    out
}

/// CSV rows (one per config) with a header, for plotting.
pub fn panel_csv(sweep: &ConfigSweep) -> String {
    let mut out =
        String::from("workflow,config,total_s,writer_finish_s,reader_finish_s,normalized\n");
    for run in &sweep.runs {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6}\n",
            sweep.workflow,
            run.config.label(),
            run.total,
            run.writer.finish_time,
            run.reader.finish_time,
            sweep.normalized(run.config)
        ));
    }
    out
}

/// The Fig. 10 style normalized series for one sweep.
pub fn normalized_series(sweep: &ConfigSweep) -> Vec<(SchedConfig, f64)> {
    SchedConfig::ALL
        .iter()
        .map(|&c| (c, sweep.normalized(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ComponentMetrics, RunMetrics};
    use pmemflow_des::ResourceReport;

    fn sweep() -> ConfigSweep {
        let mk = |config: SchedConfig, total: f64| RunMetrics {
            config,
            total,
            writer: ComponentMetrics {
                finish_time: total / 2.0,
                bytes: 1.0,
                ..Default::default()
            },
            reader: ComponentMetrics {
                finish_time: total,
                bytes: 1.0,
                ..Default::default()
            },
            device: ResourceReport::default(),
            events: 1,
            max_heap_depth: 1,
            timeline: None,
        };
        ConfigSweep {
            workflow: "w".into(),
            runs: vec![
                mk(SchedConfig::S_LOC_W, 4.0),
                mk(SchedConfig::S_LOC_R, 5.0),
                mk(SchedConfig::P_LOC_W, 6.0),
                mk(SchedConfig::P_LOC_R, 8.0),
            ],
        }
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512.0), "512.0B");
        assert_eq!(fmt_bytes(2048.0), "2.0KiB");
        assert_eq!(fmt_bytes((80u64 << 30) as f64), "80.0GiB");
    }

    #[test]
    fn table_marks_best() {
        let t = panel_table(&sweep());
        assert!(t.contains("S-LocW"));
        assert!(t
            .lines()
            .any(|l| l.contains("S-LocW") && l.contains("best")));
    }

    #[test]
    fn csv_has_header_and_four_rows() {
        let csv = panel_csv(&sweep());
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("workflow,config"));
    }

    #[test]
    fn normalized_series_ordering() {
        let s = normalized_series(&sweep());
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!((s[3].1 - 2.0).abs() < 1e-12);
    }
}
